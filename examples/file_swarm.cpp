// P2P file swarm: one seed holds a file split into k blocks; peers gossip
// RLNC combinations until everyone can reassemble the file -- the paper's
// k-dissemination problem with a single source, and the original motivation
// for algebraic gossip in Deb et al.
//
// Two drivers share this binary, selected by argv[1] or AG_TRANSPORT:
//
//   (default / AG_TRANSPORT=sim)  Deterministic simulation: 96 peers on a
//     sparse random-regular overlay, RLNC vs the classic "random block"
//     uncoded swarm, with byte-for-byte reassembly at the farthest peer.
//
//   swarm / AG_TRANSPORT=udp      A REAL multi-process swarm on loopback
//     UDP: the launcher binds one socket per node (port 0, so the kernel
//     assigns free ports racelessly), forks worker processes that inherit
//     their nodes' descriptors, and every worker runs net::run_swarm over
//     a net::UdpTransport -- versioned wire frames, epoll, gossiped
//     completion bitmap -- until all nodes decode the file.
//       file_swarm swarm [--n 16] [--k 32] [--payload 32] [--procs 4]
//                        [--seed 7] [--timeout-ms 60000]
//
//   stream                A multi-process STREAMING swarm on loopback UDP:
//     the source injects an unbounded-style message stream coded in
//     generations (src/coding/) with a bounded in-flight window; frames
//     carry the generation id in the wire-v2 header and termination is
//     gossiped as per-node delivery watermarks (net::run_stream_swarm).
//       file_swarm stream [--n 8] [--gen 16] [--window 4]
//                         [--policy sequential|round_robin|rarest_first]
//                         [--payload 32] [--messages 96] [--rate 1]
//                         [--procs 4] [--seed 7] [--timeout-ms 60000]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/decoders.hpp"
#include "core/dissemination.hpp"
#include "core/uncoded_gossip.hpp"
#include "core/uniform_ag.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "net/swarm_runner.hpp"
#include "net/udp_socket.hpp"
#include "net/udp_transport.hpp"
#include "sim/engine.hpp"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

int run_sim_demo() {
  using namespace ag;

  const std::size_t peers = 96;
  const std::size_t degree = 4;   // sparse overlay: each peer knows 4 others
  const std::size_t k = 64;       // file blocks
  const std::size_t block = 32;   // bytes per block (GF(256) symbols)

  const graph::Graph overlay = graph::make_random_regular(peers, degree, 99);
  std::printf("swarm: %zu peers, %zu-regular overlay, D=%u\n", peers, degree,
              graph::diameter(overlay));
  std::printf("file: %zu blocks x %zu bytes, seeded at peer 0\n\n", k, block);

  core::AgConfig cfg;
  cfg.payload_len = block;
  sim::Rng rng(7);

  core::UniformAG<core::Gf256Decoder> coded(overlay, core::single_source(k, 0), cfg);
  const auto coded_res = sim::run(coded, rng, 1000000);

  core::UncodedConfig ucfg;
  core::UncodedGossip uncoded(overlay, core::single_source(k, 0), ucfg);
  const auto uncoded_res = sim::run(uncoded, rng, 1000000);

  std::printf("%-30s %8llu rounds\n", "RLNC swarm complete in",
              static_cast<unsigned long long>(coded_res.rounds));
  std::printf("%-30s %8llu rounds\n", "uncoded swarm complete in",
              static_cast<unsigned long long>(uncoded_res.rounds));
  std::printf("%-30s %8.2f\n", "coding gain",
              static_cast<double>(uncoded_res.rounds) /
                  static_cast<double>(coded_res.rounds));

  // Reassemble the file at the peer farthest from the seed and verify.
  const auto dist = graph::bfs_distances(overlay, 0);
  graph::NodeId far = 0;
  for (graph::NodeId v = 0; v < peers; ++v) {
    if (dist[v] != graph::kUnreachable && dist[v] > dist[far]) far = v;
  }
  std::vector<std::uint8_t> file;
  file.reserve(k * block);
  for (std::size_t i = 0; i < k; ++i) {
    const auto blk = coded.swarm().node(far).decoded_message(i);
    file.insert(file.end(), blk.begin(), blk.end());
  }
  std::vector<std::uint8_t> want;
  want.reserve(k * block);
  for (std::size_t i = 0; i < k; ++i) {
    const auto blk = core::RlncSwarm<core::Gf256Decoder>::expected_payload(i, block);
    want.insert(want.end(), blk.begin(), blk.end());
  }
  const bool ok = file == want;
  std::printf("\nreassembly at farthest peer %u (%u hops from seed): %s (%zu bytes)\n",
              far, dist[far], ok ? "OK" : "FAILED", file.size());
  std::printf("lower bound sanity: k/2 = %zu rounds (Theorem 3 counting argument)\n",
              k / 2);
  return ok ? 0 : 1;
}

struct SwarmArgs {
  std::size_t n = 16;
  std::size_t k = 32;
  std::size_t payload = 32;
  std::size_t procs = 4;
  std::uint64_t seed = 7;
  int timeout_ms = 60000;
};

bool parse_swarm_args(int argc, char** argv, SwarmArgs& a) {
  for (int i = 0; i < argc; i += 2) {
    const std::string key = argv[i];
    if (i + 1 >= argc) return false;
    const char* val = argv[i + 1];
    if (key == "--n") a.n = std::strtoull(val, nullptr, 10);
    else if (key == "--k") a.k = std::strtoull(val, nullptr, 10);
    else if (key == "--payload") a.payload = std::strtoull(val, nullptr, 10);
    else if (key == "--procs") a.procs = std::strtoull(val, nullptr, 10);
    else if (key == "--seed") a.seed = std::strtoull(val, nullptr, 10);
    else if (key == "--timeout-ms") a.timeout_ms = std::atoi(val);
    else return false;
  }
  return a.n >= 2 && a.k >= 1 && a.procs >= 1 && a.procs <= a.n;
}

struct StreamArgs {
  std::size_t n = 8;
  std::size_t gen = 16;     // messages per generation
  std::size_t window = 4;   // generations in flight
  std::string policy = "sequential";
  std::size_t payload = 32;
  std::size_t messages = 96;
  std::size_t rate = 1;     // messages injected per tick at the source
  std::size_t procs = 4;
  std::uint64_t seed = 7;
  int timeout_ms = 60000;
};

bool parse_stream_args(int argc, char** argv, StreamArgs& a) {
  for (int i = 0; i < argc; i += 2) {
    const std::string key = argv[i];
    if (i + 1 >= argc) return false;
    const char* val = argv[i + 1];
    if (key == "--n") a.n = std::strtoull(val, nullptr, 10);
    else if (key == "--gen") a.gen = std::strtoull(val, nullptr, 10);
    else if (key == "--window") a.window = std::strtoull(val, nullptr, 10);
    else if (key == "--policy") a.policy = val;
    else if (key == "--payload") a.payload = std::strtoull(val, nullptr, 10);
    else if (key == "--messages") a.messages = std::strtoull(val, nullptr, 10);
    else if (key == "--rate") a.rate = std::strtoull(val, nullptr, 10);
    else if (key == "--procs") a.procs = std::strtoull(val, nullptr, 10);
    else if (key == "--seed") a.seed = std::strtoull(val, nullptr, 10);
    else if (key == "--timeout-ms") a.timeout_ms = std::atoi(val);
    else return false;
  }
  ag::coding::GenPolicy pol;
  return a.n >= 2 && a.gen >= 1 && a.window >= 1 && a.rate >= 1 &&
         a.procs >= 1 && a.procs <= a.n && ag::coding::parse_policy(a.policy, pol);
}

// The satellite every transport-backed mode shares: the full final
// TransportStats per worker, so packet loss and malformed-frame rejection
// are visible in the e2e logs, not just the pass/fail verdict.
[[maybe_unused]] void print_transport_stats(std::size_t worker,
                                            const ag::sim::TransportStats& t) {
  std::printf("worker %zu stats: %llu delivered, %llu dropped, "
              "%llu decode failures, %llu recv errors\n",
              worker,
              static_cast<unsigned long long>(t.messages_delivered),
              static_cast<unsigned long long>(t.messages_dropped),
              static_cast<unsigned long long>(t.decode_failures),
              static_cast<unsigned long long>(t.recv_errors));
}

#if defined(__linux__)

// One worker's life: adopt its nodes' inherited sockets, run the swarm to
// cluster-wide completion, exit 0 iff done and every block decoded.
[[noreturn]] void worker_main(ag::net::UdpSocketSet& parent_set,
                              const ag::net::EndpointTable& table,
                              const SwarmArgs& a, std::size_t worker) {
  using namespace ag;
  std::vector<net::NodeId> mine;
  std::vector<int> fds;
  for (std::size_t v = 0; v < a.n; ++v) {
    if (v % a.procs == worker) {
      mine.push_back(static_cast<net::NodeId>(v));
      fds.push_back(parent_set.fd(v));
    } else {
      ::close(parent_set.fd(v));
    }
  }
  parent_set.forget_sockets();

  net::UdpSocketSet socks;
  if (!socks.adopt(fds)) _exit(2);
  net::UdpTransport<net::Gf256Packet> transport(socks, table, mine, a.k, a.payload);
  net::SwarmConfig cfg;
  cfg.n = a.n;
  cfg.k = a.k;
  cfg.payload_len = a.payload;
  cfg.seed = a.seed;
  cfg.timeout_ms = a.timeout_ms;
  const net::SwarmReport rep = net::run_swarm(transport, cfg);
  std::printf("worker %zu (%zu nodes): %s in %llu ticks\n", worker, mine.size(),
              rep.ok() ? "complete+verified" : "FAILED",
              static_cast<unsigned long long>(rep.ticks));
  print_transport_stats(worker, rep.transport);
  std::fflush(stdout);
  _exit(rep.ok() ? 0 : 1);
}

int run_udp_swarm(const SwarmArgs& a) {
  using namespace ag;
  net::UdpSocketSet all;
  if (!all.open_loopback(a.n)) {
    std::fprintf(stderr, "file_swarm: cannot bind %zu loopback sockets\n", a.n);
    return 1;
  }
  net::EndpointTable table(a.n);
  for (std::size_t v = 0; v < a.n; ++v) {
    const std::uint16_t port = all.port(v);
    if (port == 0) {
      std::fprintf(stderr, "file_swarm: getsockname failed for node %zu\n", v);
      return 1;
    }
    table.set(static_cast<net::NodeId>(v), net::Endpoint{net::kLoopbackAddr, port});
  }
  std::printf("udp swarm: n=%zu nodes over %zu processes, k=%zu blocks x %zu bytes, "
              "GF(256), loopback ports %u..\n",
              a.n, a.procs, a.k, a.payload, table.of(0).port);
  std::fflush(stdout);

  std::vector<pid_t> kids;
  for (std::size_t w = 0; w < a.procs; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "file_swarm: fork failed\n");
      return 1;
    }
    if (pid == 0) worker_main(all, table, a, w);  // never returns
    kids.push_back(pid);
  }
  all.close_all();  // workers own their descriptors now

  bool ok = true;
  for (const pid_t pid : kids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ok = false;
    }
  }
  std::printf("udp swarm: %s\n", ok ? "all workers complete, payload verified"
                                    : "FAILED");
  return ok ? 0 : 1;
}

// Streaming worker: same socket-adoption dance, but the transport is built
// with k = generation size and the driver is the generation-windowed
// run_stream_swarm.
[[noreturn]] void stream_worker_main(ag::net::UdpSocketSet& parent_set,
                                     const ag::net::EndpointTable& table,
                                     const StreamArgs& a, std::size_t worker) {
  using namespace ag;
  std::vector<net::NodeId> mine;
  std::vector<int> fds;
  for (std::size_t v = 0; v < a.n; ++v) {
    if (v % a.procs == worker) {
      mine.push_back(static_cast<net::NodeId>(v));
      fds.push_back(parent_set.fd(v));
    } else {
      ::close(parent_set.fd(v));
    }
  }
  parent_set.forget_sockets();

  net::UdpSocketSet socks;
  if (!socks.adopt(fds)) _exit(2);
  net::UdpTransport<net::Gf256Packet> transport(socks, table, mine, a.gen, a.payload);
  net::StreamSwarmConfig cfg;
  cfg.n = a.n;
  cfg.stream.generation_size = a.gen;
  cfg.stream.window = a.window;
  if (!coding::parse_policy(a.policy, cfg.stream.policy)) _exit(2);
  cfg.stream.payload_len = a.payload;
  cfg.stream.inject_per_round = a.rate;
  cfg.stream.total_messages = a.messages;
  cfg.seed = a.seed;
  cfg.timeout_ms = a.timeout_ms;
  const net::StreamSwarmReport rep = net::run_stream_swarm(transport, cfg);
  std::printf("worker %zu (%zu nodes): %s in %llu ticks, %llu messages "
              "delivered, %llu stale frames\n",
              worker, mine.size(), rep.ok() ? "stream delivered+verified" : "FAILED",
              static_cast<unsigned long long>(rep.ticks),
              static_cast<unsigned long long>(rep.delivered_messages),
              static_cast<unsigned long long>(rep.stale_packets));
  print_transport_stats(worker, rep.transport);
  std::fflush(stdout);
  _exit(rep.ok() ? 0 : 1);
}

int run_udp_stream(const StreamArgs& a) {
  using namespace ag;
  net::UdpSocketSet all;
  if (!all.open_loopback(a.n)) {
    std::fprintf(stderr, "file_swarm: cannot bind %zu loopback sockets\n", a.n);
    return 1;
  }
  net::EndpointTable table(a.n);
  for (std::size_t v = 0; v < a.n; ++v) {
    const std::uint16_t port = all.port(v);
    if (port == 0) {
      std::fprintf(stderr, "file_swarm: getsockname failed for node %zu\n", v);
      return 1;
    }
    table.set(static_cast<net::NodeId>(v), net::Endpoint{net::kLoopbackAddr, port});
  }
  std::printf("udp stream: n=%zu nodes over %zu processes, %zu messages x %zu "
              "bytes in generations of %zu (window %zu, %s), loopback ports %u..\n",
              a.n, a.procs, a.messages, a.payload, a.gen, a.window,
              a.policy.c_str(), table.of(0).port);
  std::fflush(stdout);

  std::vector<pid_t> kids;
  for (std::size_t w = 0; w < a.procs; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "file_swarm: fork failed\n");
      return 1;
    }
    if (pid == 0) stream_worker_main(all, table, a, w);  // never returns
    kids.push_back(pid);
  }
  all.close_all();  // workers own their descriptors now

  bool ok = true;
  for (const pid_t pid : kids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ok = false;
    }
  }
  std::printf("udp stream: %s\n", ok ? "all workers delivered the stream in order"
                                     : "FAILED");
  return ok ? 0 : 1;
}

#else

int run_udp_swarm(const SwarmArgs&) {
  std::fprintf(stderr, "file_swarm: udp swarm mode requires Linux\n");
  return 1;
}

int run_udp_stream(const StreamArgs&) {
  std::fprintf(stderr, "file_swarm: udp stream mode requires Linux\n");
  return 1;
}

#endif

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "stream") == 0) {
    StreamArgs s;
    if (!parse_stream_args(argc - 2, argv + 2, s)) {
      std::fprintf(stderr,
                   "usage: file_swarm stream [--n N] [--gen G] [--window W]\n"
                   "                         [--policy sequential|round_robin|"
                   "rarest_first]\n"
                   "                         [--payload BYTES] [--messages M]\n"
                   "                         [--rate R] [--procs P] [--seed S]\n"
                   "                         [--timeout-ms MS]\n");
      return 2;
    }
    return run_udp_stream(s);
  }

  const char* env = std::getenv("AG_TRANSPORT");
  const bool want_udp =
      (argc > 1 && std::strcmp(argv[1], "swarm") == 0) ||
      (env != nullptr && std::strcmp(env, "udp") == 0);
  if (!want_udp) return run_sim_demo();

  SwarmArgs a;
  const int flag_start = (argc > 1 && std::strcmp(argv[1], "swarm") == 0) ? 2 : 1;
  if (!parse_swarm_args(argc - flag_start, argv + flag_start, a)) {
    std::fprintf(stderr,
                 "usage: file_swarm swarm [--n N] [--k K] [--payload BYTES]\n"
                 "                        [--procs P] [--seed S] [--timeout-ms MS]\n");
    return 2;
  }
  return run_udp_swarm(a);
}
