// P2P file swarm: one seed holds a file split into k = 64 blocks; peers form
// a sparse random-regular overlay and gossip blocks until everyone can
// reassemble the file -- the paper's k-dissemination problem with a single
// source, and the original motivation for algebraic gossip in Deb et al.
//
// RLNC-coded gossip is compared with the classic "random useful block"
// uncoded swarm.  The example reassembles the file at a spot-checked peer
// from the decoded payloads and verifies it byte-for-byte.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/decoders.hpp"
#include "core/dissemination.hpp"
#include "core/uncoded_gossip.hpp"
#include "core/uniform_ag.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace ag;

  const std::size_t peers = 96;
  const std::size_t degree = 4;   // sparse overlay: each peer knows 4 others
  const std::size_t k = 64;       // file blocks
  const std::size_t block = 32;   // bytes per block (GF(256) symbols)

  const graph::Graph overlay = graph::make_random_regular(peers, degree, 99);
  std::printf("swarm: %zu peers, %zu-regular overlay, D=%u\n", peers, degree,
              graph::diameter(overlay));
  std::printf("file: %zu blocks x %zu bytes, seeded at peer 0\n\n", k, block);

  core::AgConfig cfg;
  cfg.payload_len = block;
  sim::Rng rng(7);

  core::UniformAG<core::Gf256Decoder> coded(overlay, core::single_source(k, 0), cfg);
  const auto coded_res = sim::run(coded, rng, 1000000);

  core::UncodedConfig ucfg;
  core::UncodedGossip uncoded(overlay, core::single_source(k, 0), ucfg);
  const auto uncoded_res = sim::run(uncoded, rng, 1000000);

  std::printf("%-30s %8llu rounds\n", "RLNC swarm complete in",
              static_cast<unsigned long long>(coded_res.rounds));
  std::printf("%-30s %8llu rounds\n", "uncoded swarm complete in",
              static_cast<unsigned long long>(uncoded_res.rounds));
  std::printf("%-30s %8.2f\n", "coding gain",
              static_cast<double>(uncoded_res.rounds) /
                  static_cast<double>(coded_res.rounds));

  // Reassemble the file at the peer farthest from the seed and verify.
  const auto dist = graph::bfs_distances(overlay, 0);
  graph::NodeId far = 0;
  for (graph::NodeId v = 0; v < peers; ++v) {
    if (dist[v] != graph::kUnreachable && dist[v] > dist[far]) far = v;
  }
  std::vector<std::uint8_t> file;
  file.reserve(k * block);
  for (std::size_t i = 0; i < k; ++i) {
    const auto blk = coded.swarm().node(far).decoded_message(i);
    file.insert(file.end(), blk.begin(), blk.end());
  }
  std::vector<std::uint8_t> want;
  want.reserve(k * block);
  for (std::size_t i = 0; i < k; ++i) {
    const auto blk = core::RlncSwarm<core::Gf256Decoder>::expected_payload(i, block);
    want.insert(want.end(), blk.begin(), blk.end());
  }
  const bool ok = file == want;
  std::printf("\nreassembly at farthest peer %u (%u hops from seed): %s (%zu bytes)\n",
              far, dist[far], ok ? "OK" : "FAILED", file.size());
  std::printf("lower bound sanity: k/2 = %zu rounds (Theorem 3 counting argument)\n",
              k / 2);
  return ok ? 0 : 1;
}
