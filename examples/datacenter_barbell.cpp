// Two-rack replication: a datacenter with two densely connected racks and a
// single uplink between them -- exactly the paper's barbell graph, its
// worst case for uniform gossip (Omega(n^2)) and the motivating topology for
// TAG (Sections 1.1, 5, 6).
//
// Task: replicate k = 24 configuration blobs (scattered across both racks)
// to every machine.  The example compares four protocols on identical
// placements and prints the paper's punchline: uniform gossip drowns at the
// uplink, TAG routes around it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/decoders.hpp"
#include "core/dissemination.hpp"
#include "core/parallel_experiment.hpp"
#include "core/stp_policies.hpp"
#include "core/tag.hpp"
#include "core/uncoded_gossip.hpp"
#include "core/uniform_ag.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace ag;

  // --threads N: worker threads for the experiment runner (0 = all cores;
  // default reads AG_THREADS, else all cores).  The results are identical
  // for every thread count -- only the wall clock changes.
  std::size_t threads = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<std::size_t>(std::atol(argv[i + 1]));
    }
  }

  const std::size_t n = 64;  // 32 machines per rack
  const std::size_t k = 24;  // config blobs to replicate
  const graph::Graph dc = graph::make_barbell(n);

  std::printf("two-rack datacenter: n=%zu machines, single uplink, D=%u\n", n,
              graph::diameter(dc));
  std::printf("task: replicate k=%zu config blobs to all machines "
              "(%zu worker threads)\n\n",
              k, core::resolve_threads(threads));

  const std::size_t runs = 10;
  auto report = [&](const char* name, const std::vector<double>& rounds) {
    double mean = 0, worst = 0;
    for (double r : rounds) {
      mean += r;
      worst = worst < r ? r : worst;
    }
    mean /= static_cast<double>(rounds.size());
    std::printf("  %-34s mean %8.1f rounds   worst %8.0f\n", name, mean, worst);
    return mean;
  };

  std::printf("protocols (over %zu runs):\n", runs);
  const double t_ag = report(
      "uniform algebraic gossip",
      core::parallel_stopping_rounds(
          [&](sim::Rng& rng) {
            const auto placement = core::uniform_distinct(k, n, rng);
            core::AgConfig cfg;
            return core::UniformAG<core::Gf256Decoder>(dc, placement, cfg);
          },
          runs, 1, 10000000, threads));
  const double t_tag = report(
      "TAG + round-robin broadcast tree",
      core::parallel_stopping_rounds(
          [&](sim::Rng& rng) {
            const auto placement = core::uniform_distinct(k, n, rng);
            core::AgConfig cfg;
            core::BroadcastStpConfig stp;
            return core::Tag<core::Gf256Decoder, core::BroadcastStpPolicy>(
                dc, placement, cfg, stp, rng);
          },
          runs, 2, 10000000, threads));
  const double t_tagis = report(
      "TAG + IS tree (weak conductance)",
      core::parallel_stopping_rounds(
          [&](sim::Rng& rng) {
            const auto placement = core::uniform_distinct(k, n, rng);
            core::AgConfig cfg;
            core::IsStpConfig stp;
            return core::Tag<core::Gf256Decoder, core::IsStpPolicy>(dc, placement, cfg,
                                                                    stp, rng);
          },
          runs, 3, 10000000, threads));
  const double t_un = report(
      "uncoded store-and-forward",
      core::parallel_stopping_rounds(
          [&](sim::Rng& rng) {
            const auto placement = core::uniform_distinct(k, n, rng);
            core::UncodedConfig cfg;
            return core::UncodedGossip(dc, placement, cfg);
          },
          runs, 4, 10000000, threads));

  std::printf("\nspeedups vs uniform gossip: TAG+B_RR %.1fx, TAG+IS %.1fx\n",
              t_ag / t_tag, t_ag / t_tagis);
  std::printf("uncoded pays a further %.1fx over coded uniform gossip\n", t_un / t_ag);
  std::printf("\nwhy: the uplink is chosen by a uniform gossiper with probability "
              "~2/%zu per round,\nwhile both TAG trees cross it once and then pump "
              "a coded packet over it every round.\n", n / 2);
  return 0;
}
