// Partition-and-heal: run uniform algebraic gossip on a barbell whose
// bridge disappears every other epoch (a scripted adversarial topology),
// with a lossy bridge and background node churn stacked on top -- the full
// dynamic scenario layer in one run.
//
// The traced run prints the minimum rank across nodes per epoch: rank
// plateaus while the network is partitioned (each side saturates on its own
// dimensions) and jumps right after each heal, until full rank everywhere.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/partition_heal
#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/decoders.hpp"
#include "core/dissemination.hpp"
#include "core/uniform_ag.hpp"
#include "graph/generators.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/topology.hpp"

int main() {
  using namespace ag;

  const std::size_t n = 24, k = 12;
  const std::uint64_t epoch = 8;  // rounds per healed/partitioned phase
  const auto g = graph::make_barbell(n);
  const graph::NodeId bl = static_cast<graph::NodeId>(n / 2 - 1);
  const graph::NodeId br = static_cast<graph::NodeId>(n / 2);

  sim::Rng rng(2026);
  const core::Placement placement = core::uniform_distinct(k, n, rng);

  // Scripted partition/heal, churn stacked on top of it.
  sim::ChurnConfig churn;
  churn.leave_probability = 0.01;
  churn.rejoin_probability = 0.3;
  churn.stop_round = 20 * epoch;
  churn.seed = rng();
  auto topo = std::make_unique<sim::ChurnTopology>(
      sim::make_periodic_partition(g, {{bl, br}}, epoch), churn);

  core::AgConfig cfg;
  cfg.payload_len = 8;
  core::UniformAG<core::Gf256Decoder> proto(std::move(topo), placement, cfg);

  // The bridge is also lossy while it exists.
  sim::Channel ch;
  ch.set_edge_loss(bl, br, 0.25);
  ch.reseed(rng());
  proto.set_channel(std::move(ch));

  std::printf("partition/heal barbell, n=%zu k=%zu, epoch=%llu rounds, "
              "bridge loss 25%%, churn 1%%/round\n\n",
              n, k, static_cast<unsigned long long>(epoch));
  std::printf("%8s  %12s  %10s  %s\n", "round", "phase", "min rank", "complete nodes");

  std::uint64_t last_epoch_printed = ~std::uint64_t{0};
  const auto res = sim::run_traced(proto, rng, 100000, [&](std::uint64_t round) {
    const std::uint64_t e = (round - 1) / epoch;
    if (e == last_epoch_printed && round % epoch != 0) return;
    last_epoch_printed = e;
    std::size_t min_rank = k;
    for (graph::NodeId v = 0; v < n; ++v) {
      min_rank = std::min(min_rank, proto.swarm().node(v).rank());
    }
    std::printf("%8llu  %12s  %7zu/%zu  %zu/%zu\n",
                static_cast<unsigned long long>(round),
                e % 2 == 0 ? "healed" : "partitioned", min_rank, k,
                proto.swarm().complete_count(), n);
  });

  std::printf("\ncompleted in %llu rounds (%llu dropped on the lossy bridge)\n",
              static_cast<unsigned long long>(res.rounds),
              static_cast<unsigned long long>(proto.messages_dropped()));

  std::size_t decode_failures = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < k; ++i) {
      if (!proto.swarm().decodes_correctly(v, i)) ++decode_failures;
    }
  }
  std::printf("decode check: %s\n",
              decode_failures == 0 ? "all nodes decoded all messages" : "FAILED");
  return res.completed && decode_failures == 0 ? 0 : 1;
}
