// Quickstart: disseminate k = 8 messages over a 4x8 grid with uniform
// algebraic gossip, then do the same with TAG, and verify every node decodes
// every message payload.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/decoders.hpp"
#include "core/dissemination.hpp"
#include "core/stp_policies.hpp"
#include "core/tag.hpp"
#include "core/uniform_ag.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace ag;

  const graph::Graph g = graph::make_grid(4, 8);
  const std::size_t n = g.node_count();
  const std::size_t k = 8;

  sim::Rng rng(/*seed=*/42);
  const core::Placement placement = core::uniform_distinct(k, n, rng);

  core::AgConfig cfg;
  cfg.time_model = sim::TimeModel::Synchronous;
  cfg.direction = sim::Direction::Exchange;
  cfg.payload_len = 16;  // 16 bytes of payload per message over GF(256)

  // --- Uniform algebraic gossip (Section 3) ---------------------------------
  core::UniformAG<core::Gf256Decoder> uniform_ag(g, placement, cfg);
  const sim::RunResult r1 = sim::run(uniform_ag, rng, /*max_rounds=*/100000);
  std::printf("uniform algebraic gossip : %llu rounds (n=%zu, k=%zu, D=%u)\n",
              static_cast<unsigned long long>(r1.rounds), n, k, graph::diameter(g));

  // --- TAG with a round-robin broadcast spanning tree (Sections 4-5) --------
  core::BroadcastStpConfig stp;
  stp.comm = core::CommModel::RoundRobin;
  core::Tag<core::Gf256Decoder, core::BroadcastStpPolicy> tag(g, placement, cfg, stp, rng);
  const sim::RunResult r2 = sim::run(tag, rng, /*max_rounds=*/100000);
  std::printf("TAG (B_RR spanning tree) : %llu rounds, tree ready at round %llu\n",
              static_cast<unsigned long long>(r2.rounds),
              static_cast<unsigned long long>(tag.tree_complete_round()));

  // --- End-to-end decode verification ---------------------------------------
  std::size_t decode_failures = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < k; ++i) {
      if (!uniform_ag.swarm().decodes_correctly(v, i)) ++decode_failures;
      if (!tag.swarm().decodes_correctly(v, i)) ++decode_failures;
    }
  }
  std::printf("decode check             : %s\n",
              decode_failures == 0 ? "all nodes decoded all messages" : "FAILED");
  return decode_failures == 0 ? 0 : 1;
}
