// agsim -- command-line driver for the gossip simulator.
//
// Run any protocol of the library on any built-in graph family (or a file)
// without writing code.  Prints a one-line CSV-ish record per run plus a
// summary, so it slots into scripts and notebooks.
//
// Usage examples:
//   agsim --graph barbell --n 64 --protocol tag-brr --k 64 --runs 10
//   agsim --graph grid --rows 8 --cols 16 --protocol uniform-ag --k 32
//         --time async --dir push --seed 7   (one line)
//   agsim --graph complete --n 32 --protocol uncoded --k 32
//   agsim --graph barbell --n 32 --protocol tag-is --k 10 --dot tree.dot
//   agsim --edge-list my_graph.txt --protocol uniform-ag --k 8
//   agsim --graph complete --n 100000 --protocol uniform-ag --k 32
//         --rank-only --implicit --runs 1    (large-n scaling path)
//
// Protocols: uniform-ag | tag-brr | tag-unif | tag-is | uncoded | brr | is
// (brr / is run the spanning-tree protocols standalone).
//
// Decoder switches (uniform-ag only):
//   --gf2        bit-packed GF(2) full decoder instead of GF(256)
//   --rank-only  coefficient-only rank tracker over GF(2) in a pooled
//                structure-of-arrays store: no payload arena, the memory
//                footprint that makes n >= 100k runs possible.  Stopping
//                rounds are EXACTLY those of --gf2 on the same seed.
//   --implicit   serve complete/barbell topologies implicitly (O(1) memory,
//                no edge materialisation); required for clique families at
//                n where the Theta(n^2) edge set cannot be stored.
//
// Byzantine scenarios (uniform-ag and uncoded):
//   --byzantine F   a fraction F of nodes (at least one) forge every message
//                   they originate; insert-time verification is armed
//                   automatically.  AG_BYZANTINE=F is the env equivalent.
//   --attack M      rank-waste | malformed | garbage | equivocate (default)
//   Note a message initially owned ONLY by a Byzantine node is unrecoverable
//   (its owner lies on every send); use --placement source with an honest
//   source when you need completion rather than inflation measurements.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/byzantine.hpp"
#include "core/decoders.hpp"
#include "core/dissemination.hpp"
#include "core/sharded_round.hpp"
#include "core/stp_policies.hpp"
#include "core/stp_protocol.hpp"
#include "core/swarm_storage.hpp"
#include "core/tag.hpp"
#include "core/uncoded_gossip.hpp"
#include "core/uniform_ag.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "linalg/rank_tracker.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"
#include "sim/topology.hpp"
#include "stats/summary.hpp"

namespace {

using namespace ag;

struct Options {
  std::string graph = "grid";
  std::string edge_list_path;
  std::size_t n = 64;
  std::size_t rows = 8, cols = 8;
  std::size_t cliques = 2;
  double er_p = 0.15;
  std::size_t reg_d = 4;
  std::string protocol = "uniform-ag";
  std::size_t k = 16;
  std::string time = "sync";
  std::string dir = "exchange";
  std::string placement = "uniform";  // uniform | all-to-all | source
  graph::NodeId source = 0;
  std::size_t payload = 0;
  double drop = 0.0;
  std::size_t runs = 5;
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 10000000;
  std::string dot_path;  // write the built spanning tree (TAG/STP runs)
  bool gf2 = false;        // uniform-ag over the bit-packed GF(2) decoder
  bool rank_only = false;  // uniform-ag over the pooled rank-only tracker
  bool implicit_topo = false;  // complete/barbell served without edge storage
  std::size_t shards = 0;   // --shards: intra-run sharded engine (0 = AG_SHARDS)
  bool shards_set = false;  // sharding switches engines, so it must be explicit
  double byzantine = 0.0;   // --byzantine: Byzantine node fraction (0 = off)
  bool byzantine_set = false;  // the flag wins over the AG_BYZANTINE env knob
  std::string attack = "equivocate";  // --attack: forgery family
  double radius = 0.3;      // --radius: geometric connection radius
  std::size_t pa_m = 2;     // --pa-m: preferential-attachment edges per node
};

[[noreturn]] void usage(const char* msg) {
  if (msg) std::fprintf(stderr, "agsim: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: agsim [--graph FAMILY|--edge-list FILE] [family params]\n"
               "             --protocol P [--k K] [--time sync|async]\n"
               "             [--dir push|pull|exchange|broadcast]\n"
               "             [--placement uniform|all-to-all|source]\n"
               "             [--source NODE] [--payload SYMBOLS] [--drop P]\n"
               "             [--runs R] [--seed S] [--max-rounds M] [--dot FILE]\n"
               "             [--gf2] [--rank-only] [--implicit] [--shards S]\n"
               "             [--byzantine F] [--attack M]\n"
               "families : path cycle complete grid torus bintree star hypercube\n"
               "           barbell clique-chain lollipop er random-regular ring-chords\n"
               "           geometric (--radius R) pref-attach (--pa-m M)\n"
               "protocols: uniform-ag tag-brr tag-unif tag-is uncoded brr is\n"
               "scaling  : --gf2 (bit-packed decoder), --rank-only (no payload arena,\n"
               "           pooled storage; rounds == --gf2 exactly), --implicit\n"
               "           (complete/barbell without edge storage; uniform-ag only),\n"
               "           --shards S (intra-run sharded engine, uniform-ag sync only;\n"
               "           rounds are identical for every S, S=0 reads AG_SHARDS)\n"
               "byzantine: --byzantine F (fraction of forging nodes, at least one;\n"
               "           AG_BYZANTINE=F is the env equivalent; uniform-ag/uncoded,\n"
               "           arms insert-time verification), --attack rank-waste|\n"
               "           malformed|garbage|equivocate (default equivocate)\n");
  std::exit(2);
}

graph::Graph build_graph(const Options& o) {
  if (!o.edge_list_path.empty()) {
    std::ifstream in(o.edge_list_path);
    if (!in) usage("cannot open edge list file");
    return graph::from_edge_list(in);
  }
  if (o.graph == "path") return graph::make_path(o.n);
  if (o.graph == "cycle") return graph::make_cycle(o.n);
  if (o.graph == "complete") return graph::make_complete(o.n);
  if (o.graph == "grid") return graph::make_grid(o.rows, o.cols);
  if (o.graph == "torus") return graph::make_torus(o.rows, o.cols);
  if (o.graph == "bintree") return graph::make_binary_tree(o.n);
  if (o.graph == "star") return graph::make_star(o.n);
  if (o.graph == "hypercube") {
    std::size_t dim = 0;
    while ((std::size_t{1} << dim) < o.n) ++dim;
    return graph::make_hypercube(dim);
  }
  if (o.graph == "barbell") return graph::make_barbell(o.n);
  if (o.graph == "clique-chain")
    return graph::make_clique_chain(o.cliques, o.n / o.cliques);
  if (o.graph == "lollipop") return graph::make_lollipop(o.n, o.n / 2);
  if (o.graph == "er") return graph::make_erdos_renyi(o.n, o.er_p, o.seed);
  if (o.graph == "random-regular")
    return graph::make_random_regular(o.n, o.reg_d, o.seed);
  if (o.graph == "ring-chords")
    return graph::make_ring_with_chords(o.n, o.n / 4, o.seed);
  if (o.graph == "geometric")
    return graph::make_random_geometric(o.n, o.radius, o.seed);
  if (o.graph == "pref-attach")
    return graph::make_preferential_attachment(o.n, o.pa_m, o.seed);
  usage("unknown graph family");
}

sim::AttackMode parse_attack(const std::string& s) {
  if (s == "rank-waste") return sim::AttackMode::RankWaste;
  if (s == "malformed") return sim::AttackMode::MalformedCoeffs;
  if (s == "garbage") return sim::AttackMode::GarbagePayload;
  if (s == "equivocate") return sim::AttackMode::Equivocate;
  usage("unknown --attack (rank-waste|malformed|garbage|equivocate)");
}

// Fraction-based membership: the per-scenario node draw comes from the
// adversary's own stream, so the honest protocol stream is untouched.
sim::AdversaryConfig byzantine_config(const Options& o) {
  sim::AdversaryConfig a;
  a.fraction = o.byzantine;
  a.mode = parse_attack(o.attack);
  a.seed = o.seed;
  return a;
}

core::Placement build_placement(const Options& o, std::size_t n, sim::Rng& rng) {
  if (o.placement == "all-to-all") return core::all_to_all(n);
  if (o.placement == "source") return core::single_source(o.k, o.source);
  return core::uniform_distinct(o.k, n, rng);
}

struct RunRecord {
  double rounds = 0;
  double tree_round = -1;
  double wire_mbits = 0;
  std::uint64_t forged = 0;    // sends whose content the adversary replaced
  std::uint64_t rejected = 0;  // receives the verification hook / guards refused
  bool decoded = true;
};

// The topology a uniform-ag run queries: implicit O(1) views for the clique
// families under --implicit, a StaticTopology over the built graph otherwise
// (g outlives the protocol; it lives in main).
std::unique_ptr<sim::TopologyView> make_view(const Options& o, const graph::Graph* g) {
  if (o.implicit_topo) {
    if (o.graph == "complete") return std::make_unique<sim::CompleteTopology>(o.n);
    if (o.graph == "barbell") return std::make_unique<sim::BarbellTopology>(o.n);
    usage("--implicit supports --graph complete|barbell");
  }
  return std::make_unique<sim::StaticTopology>(*g);
}

// One uniform-ag run over decoder D with storage policy Store.
template <typename D, typename Store = core::VectorNodeStore<D>>
RunRecord run_uniform_ag(const Options& o, std::unique_ptr<sim::TopologyView> topo,
                         std::size_t n, sim::Rng& rng, const core::AgConfig& cfg) {
  const auto placement = build_placement(o, n, rng);
  core::UniformAG<D, Store> proto(std::move(topo), placement, cfg);
  const sim::AdversarialTransport<typename D::packet_type>* tp = nullptr;
  if (o.byzantine > 0.0) {
    auto adv = std::make_shared<sim::Adversary>(n, byzantine_config(o));
    tp = core::attach_adversary<typename D::packet_type>(
        proto, std::move(adv),
        core::ByzantineShape{o.k, proto.swarm().node(0).payload_length()});
  }
  const auto res = sim::run(proto, rng, o.max_rounds);
  RunRecord rec;
  rec.rounds = static_cast<double>(res.rounds);
  rec.wire_mbits = proto.wire_bits() / 1e6;
  if (tp) rec.forged = tp->forged_sends();
  rec.rejected = proto.swarm().malformed_receives();
  rec.decoded = res.completed;
  return rec;
}

// One uniform-ag run on the intra-run sharded engine (core/sharded_round.hpp).
// Stopping rounds are identical for every shard count, so --shards changes
// wall-clock only; note the engine is its own stream reference (shards=1),
// not stream-compatible with the classic serial engine above.
template <typename D, typename Store = core::VectorNodeStore<D>>
RunRecord run_sharded_uniform_ag(const Options& o,
                                 std::unique_ptr<sim::TopologyView> topo,
                                 std::size_t n, sim::Rng& rng,
                                 const core::AgConfig& cfg, std::uint64_t run) {
  const auto placement = build_placement(o, n, rng);
  core::ShardedUniformAG<D, Store> proto(std::move(topo), placement, cfg, o.seed,
                                         run, o.shards);
  const auto res = proto.run(o.max_rounds);
  RunRecord rec;
  rec.rounds = static_cast<double>(res.rounds);
  rec.wire_mbits = proto.wire_bits() / 1e6;
  rec.decoded = res.completed;
  return rec;
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value for option");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--graph") o.graph = need(i);
    else if (a == "--edge-list") o.edge_list_path = need(i);
    else if (a == "--n") o.n = std::stoul(need(i));
    else if (a == "--rows") o.rows = std::stoul(need(i));
    else if (a == "--cols") o.cols = std::stoul(need(i));
    else if (a == "--cliques") o.cliques = std::stoul(need(i));
    else if (a == "--er-p") o.er_p = std::stod(need(i));
    else if (a == "--reg-d") o.reg_d = std::stoul(need(i));
    else if (a == "--protocol") o.protocol = need(i);
    else if (a == "--k") o.k = std::stoul(need(i));
    else if (a == "--time") o.time = need(i);
    else if (a == "--dir") o.dir = need(i);
    else if (a == "--placement") o.placement = need(i);
    else if (a == "--source") o.source = static_cast<graph::NodeId>(std::stoul(need(i)));
    else if (a == "--payload") o.payload = std::stoul(need(i));
    else if (a == "--drop") o.drop = std::stod(need(i));
    else if (a == "--runs") o.runs = std::stoul(need(i));
    else if (a == "--seed") o.seed = std::stoull(need(i));
    else if (a == "--max-rounds") o.max_rounds = std::stoull(need(i));
    else if (a == "--dot") o.dot_path = need(i);
    else if (a == "--shards") { o.shards = std::stoul(need(i)); o.shards_set = true; }
    else if (a == "--byzantine") { o.byzantine = std::stod(need(i)); o.byzantine_set = true; }
    else if (a == "--attack") o.attack = need(i);
    else if (a == "--radius") o.radius = std::stod(need(i));
    else if (a == "--pa-m") o.pa_m = std::stoul(need(i));
    else if (a == "--gf2") o.gf2 = true;
    else if (a == "--rank-only") o.rank_only = true;
    else if (a == "--implicit") o.implicit_topo = true;
    else if (a == "--help" || a == "-h") usage(nullptr);
    else usage(("unknown option: " + a).c_str());
  }
  // Env equivalent of --byzantine, same discipline as AG_SHARDS/AG_THREADS:
  // an unparseable or out-of-range value is a loud error, never a silent 0.
  if (!o.byzantine_set) {
    if (const char* env = std::getenv("AG_BYZANTINE")) {
      char* end = nullptr;
      const double f = std::strtod(env, &end);
      if (end == env || *end != '\0' || !(f >= 0.0) || f > 1.0) {
        usage("AG_BYZANTINE must be a fraction in [0, 1]");
      }
      o.byzantine = f;
    }
  }
  if (o.byzantine < 0.0 || o.byzantine > 1.0) {
    usage("--byzantine must be a fraction in [0, 1]");
  }
  (void)parse_attack(o.attack);  // reject bad --attack values up front
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if ((o.gf2 || o.rank_only || o.implicit_topo) && o.protocol != "uniform-ag") {
    usage("--gf2/--rank-only/--implicit apply to --protocol uniform-ag only");
  }
  if (o.gf2 && o.rank_only) usage("--gf2 and --rank-only are exclusive");
  if (o.shards_set && o.protocol != "uniform-ag") {
    usage("--shards applies to --protocol uniform-ag only");
  }
  if (o.shards_set && o.time == "async") {
    usage("--shards requires --time sync (async serialises on a global "
          "activation order)");
  }
  if (o.rank_only && o.payload > 0) {
    usage("--rank-only stores no payload (drop --payload); rank evolution is "
          "payload-independent, so stopping rounds are unaffected");
  }
  if (o.byzantine > 0.0 && o.protocol != "uniform-ag" && o.protocol != "uncoded") {
    usage("--byzantine applies to --protocol uniform-ag|uncoded");
  }
  if (o.byzantine > 0.0 && o.shards_set) {
    usage("--byzantine decorates the classic transport seam; drop --shards");
  }

  // Under --implicit the clique families are served analytically: no edge
  // materialisation (a complete graph at n = 100k would need ~40 GB of
  // adjacency), connectivity holds by construction, and D is known.
  std::optional<graph::Graph> g;
  if (!o.implicit_topo) g = build_graph(o);
  const std::size_t n = g ? g->node_count() : o.n;
  if (g && !graph::is_connected(*g)) usage("graph is not connected");
  if (o.k > n && o.placement == "uniform") usage("k > n requires --placement source");

  const sim::TimeModel tm =
      o.time == "async" ? sim::TimeModel::Asynchronous : sim::TimeModel::Synchronous;
  const sim::Direction dir = o.dir == "push"        ? sim::Direction::Push
                             : o.dir == "pull"      ? sim::Direction::Pull
                             : o.dir == "broadcast" ? sim::Direction::Broadcast
                                                    : sim::Direction::Exchange;

  if (g) {
    std::printf("# graph=%s %s D=%u | protocol=%s k=%zu time=%s dir=%s drop=%.2f\n",
                o.graph.c_str(), g->summary().c_str(), graph::diameter(*g),
                o.protocol.c_str(), o.k, o.time.c_str(), o.dir.c_str(), o.drop);
  } else {
    std::printf("# graph=%s(implicit) n=%zu D=%d | protocol=%s%s k=%zu time=%s "
                "dir=%s drop=%.2f\n",
                o.graph.c_str(), n, o.graph == "complete" ? 1 : 3,
                o.protocol.c_str(), o.rank_only ? "(rank-only)" : "", o.k,
                o.time.c_str(), o.dir.c_str(), o.drop);
  }
  if (o.byzantine > 0.0) {
    // Membership is deterministic in (seed, n), so the per-run adversaries all
    // pick these same nodes; print them so an honest --source can be chosen.
    const sim::Adversary probe(n, byzantine_config(o));
    std::printf("# byzantine members (%zu):", probe.byzantine_count());
    for (const auto v : probe.members()) std::printf(" %u", static_cast<unsigned>(v));
    std::printf("\n");
  }
  std::printf("run,rounds,tree_round,wire_Mbits,forged,rejected,decoded\n");

  std::vector<double> all_rounds;
  std::uint64_t total_forged = 0, total_rejected = 0;
  bool all_ok = true;
  for (std::size_t r = 0; r < o.runs; ++r) {
    sim::Rng rng = sim::Rng::for_run(o.seed, r);
    RunRecord rec;

    core::AgConfig cfg;
    cfg.time_model = tm;
    cfg.direction = dir;
    cfg.payload_len = o.payload;
    cfg.drop_probability = o.drop;
    cfg.drop_seed = o.seed * 1000 + r;
    // Forged frames must never reach a decoder's elimination path.
    cfg.verify_inserts = o.byzantine > 0.0;

    if (o.protocol == "uniform-ag" && o.shards_set) {
      auto topo = make_view(o, g ? &*g : nullptr);
      if (o.rank_only) {
        rec = run_sharded_uniform_ag<linalg::BitRankTracker, core::BitRankStore>(
            o, std::move(topo), n, rng, cfg, r);
      } else if (o.gf2) {
        rec = run_sharded_uniform_ag<core::Gf2Decoder>(o, std::move(topo), n, rng,
                                                       cfg, r);
      } else {
        rec = run_sharded_uniform_ag<core::Gf256Decoder>(o, std::move(topo), n,
                                                         rng, cfg, r);
      }
    } else if (o.protocol == "uniform-ag") {
      auto topo = make_view(o, g ? &*g : nullptr);
      if (o.rank_only) {
        rec = run_uniform_ag<linalg::BitRankTracker, core::BitRankStore>(
            o, std::move(topo), n, rng, cfg);
      } else if (o.gf2) {
        rec = run_uniform_ag<core::Gf2Decoder>(o, std::move(topo), n, rng, cfg);
      } else {
        rec = run_uniform_ag<core::Gf256Decoder>(o, std::move(topo), n, rng, cfg);
      }
    } else if (o.protocol == "tag-brr" || o.protocol == "tag-unif") {
      const auto placement = build_placement(o, n, rng);
      core::BroadcastStpConfig stp;
      stp.comm = o.protocol == "tag-brr" ? core::CommModel::RoundRobin
                                         : core::CommModel::Uniform;
      core::Tag<core::Gf256Decoder, core::BroadcastStpPolicy> proto(*g, placement, cfg,
                                                                    stp, rng);
      const auto res = sim::run(proto, rng, o.max_rounds);
      rec.rounds = static_cast<double>(res.rounds);
      rec.tree_round = static_cast<double>(proto.tree_complete_round());
      rec.wire_mbits = proto.wire_bits() / 1e6;
      rec.decoded = res.completed;
      if (!o.dot_path.empty() && r == 0) {
        std::ofstream out(o.dot_path);
        out << graph::to_dot(*g, proto.policy().tree());
      }
    } else if (o.protocol == "tag-is") {
      const auto placement = build_placement(o, n, rng);
      core::IsStpConfig stp;
      core::Tag<core::Gf256Decoder, core::IsStpPolicy> proto(*g, placement, cfg, stp,
                                                             rng);
      const auto res = sim::run(proto, rng, o.max_rounds);
      rec.rounds = static_cast<double>(res.rounds);
      rec.tree_round = static_cast<double>(proto.tree_complete_round());
      rec.wire_mbits = proto.wire_bits() / 1e6;
      rec.decoded = res.completed;
      if (!o.dot_path.empty() && r == 0) {
        std::ofstream out(o.dot_path);
        out << graph::to_dot(*g, proto.policy().tree());
      }
    } else if (o.protocol == "uncoded") {
      const auto placement = build_placement(o, n, rng);
      core::UncodedConfig ucfg;
      ucfg.time_model = tm;
      ucfg.direction = dir;
      ucfg.drop_probability = o.drop;
      core::UncodedGossip proto(*g, placement, ucfg);
      const sim::AdversarialTransport<std::uint32_t>* tp = nullptr;
      if (o.byzantine > 0.0) {
        auto adv = std::make_shared<sim::Adversary>(n, byzantine_config(o));
        tp = core::attach_adversary<std::uint32_t>(proto, std::move(adv),
                                                   core::ByzantineShape{o.k, 0});
      }
      const auto res = sim::run(proto, rng, o.max_rounds);
      rec.rounds = static_cast<double>(res.rounds);
      if (tp) rec.forged = tp->forged_sends();
      rec.rejected = proto.rejected_receives();
      rec.decoded = res.completed;
    } else if (o.protocol == "brr") {
      core::BroadcastStpConfig stp;
      stp.comm = core::CommModel::RoundRobin;
      stp.origin = o.source;
      core::StpProtocol<core::BroadcastStpPolicy> proto(tm, *g, stp, rng);
      const auto res = sim::run(proto, rng, o.max_rounds);
      rec.rounds = static_cast<double>(res.rounds);
      rec.tree_round = static_cast<double>(proto.tree_complete_round());
      rec.wire_mbits = proto.wire_bits() / 1e6;
      rec.decoded = res.completed;
      if (!o.dot_path.empty() && r == 0) {
        std::ofstream out(o.dot_path);
        out << graph::to_dot(*g, proto.policy().tree());
      }
    } else if (o.protocol == "is") {
      core::IsStpConfig stp;
      stp.root = o.source;
      core::StpProtocol<core::IsStpPolicy> proto(tm, *g, stp, rng);
      const auto res = sim::run(proto, rng, o.max_rounds);
      rec.rounds = static_cast<double>(res.rounds);
      rec.tree_round = static_cast<double>(proto.tree_complete_round());
      rec.wire_mbits = proto.wire_bits() / 1e6;
      rec.decoded = res.completed;
    } else {
      usage("unknown protocol");
    }

    all_rounds.push_back(rec.rounds);
    total_forged += rec.forged;
    total_rejected += rec.rejected;
    all_ok = all_ok && rec.decoded;
    std::printf("%zu,%.0f,%.0f,%.3f,%llu,%llu,%s\n", r, rec.rounds, rec.tree_round,
                rec.wire_mbits, static_cast<unsigned long long>(rec.forged),
                static_cast<unsigned long long>(rec.rejected),
                rec.decoded ? "yes" : "NO");
  }

  const auto s = ag::stats::summarize(all_rounds);
  std::printf("# summary: mean=%.1f median=%.1f min=%.0f max=%.0f stddev=%.1f%s\n",
              s.mean, s.median, s.min, s.max, s.stddev,
              all_ok ? "" : "  [SOME RUNS DID NOT COMPLETE]");
  if (o.byzantine > 0.0) {
    std::printf("# byzantine: fraction=%.2f attack=%s forged=%llu rejected=%llu\n",
                o.byzantine, o.attack.c_str(),
                static_cast<unsigned long long>(total_forged),
                static_cast<unsigned long long>(total_rejected));
  }
  return all_ok ? 0 : 1;
}
