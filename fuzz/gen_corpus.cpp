// Seed-corpus generator: writes deterministic wire frames for the fuzz
// harnesses into <outdir>.
//
//   gen_corpus <outdir>
//
// The seeds come from the real encoder (valid frames for all five packet
// fields plus control, over shapes straddling every bit-packing boundary)
// plus the malformed-frame corpus the wire tests pin: truncations, bad
// magic/version/field, oversized counts, shape mismatch, trailing bytes,
// out-of-range symbols and nonzero spare bits.  File names say what each
// seed is, so a libFuzzer crash artifact's lineage is readable.
//
// The committed copy under fuzz/corpus/ is this tool's output; the
// corpus_generate ctest fixture regenerates it into the build tree on every
// run, so encoder drift shows up as replay/seed divergence, not silence.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "sim/rng.hpp"

namespace {

using namespace ag;
namespace fs = std::filesystem;

fs::path g_out;
int g_count = 0;

void emit(const std::string& name, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(g_out / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "gen_corpus: cannot write %s\n", (g_out / name).c_str());
    std::exit(1);
  }
  ++g_count;
}

template <typename F>
linalg::DensePacket<F> random_dense(std::size_t k, std::size_t len, sim::Rng& rng) {
  linalg::DensePacket<F> p;
  p.coeffs.resize(k);
  p.payload.resize(len);
  for (auto& c : p.coeffs) c = static_cast<typename F::value_type>(rng.uniform(F::order));
  for (auto& s : p.payload) s = static_cast<typename F::value_type>(rng.uniform(F::order));
  return p;
}

linalg::BitPacket random_bit(std::size_t k, std::size_t words, sim::Rng& rng) {
  linalg::BitPacket p;
  p.coeffs.resize((k + 63) / 64);
  p.payload.resize(words);
  for (auto& w : p.coeffs) w = rng();
  if (k % 64 != 0 && !p.coeffs.empty())
    p.coeffs.back() &= (std::uint64_t{1} << (k % 64)) - 1;
  for (auto& w : p.payload) w = rng();
  return p;
}

template <typename P>
std::vector<std::uint8_t> frame_of(const P& pkt, std::size_t k) {
  std::vector<std::uint8_t> f;
  net::encode_into(pkt, k, f);
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <outdir>\n", argv[0]);
    return 2;
  }
  g_out = argv[1];
  fs::create_directories(g_out);

  sim::Rng rng(20260808);

  // --- valid frames from the encoder: every field x boundary shapes -------
  const std::size_t ks[] = {1, 7, 8, 13, 64, 65};
  const std::size_t lens[] = {0, 1, 4, 32};
  char name[64];
  for (const auto k : ks) {
    for (const auto len : lens) {
      const auto shaped = [&](const char* field) {
        std::snprintf(name, sizeof name, "valid_%s_k%zu_l%zu", field, k, len);
        return name;
      };
      emit(shaped("gf2bit"), frame_of(random_bit(k, len, rng), k));
      emit(shaped("gf2"), frame_of(random_dense<gf::GF2>(k, len, rng), k));
      emit(shaped("gf16"), frame_of(random_dense<gf::GF16>(k, len, rng), k));
      emit(shaped("gf256"), frame_of(random_dense<gf::GF256>(k, len, rng), k));
      emit(shaped("gf64k"), frame_of(random_dense<gf::GF65536>(k, len, rng), k));
    }
  }

  net::ControlFrame ctl;
  ctl.sender = 3;
  ctl.data = {0xde, 0xad, 0xbe, 0xef};
  std::vector<std::uint8_t> cf;
  net::encode_control(ctl, cf);
  emit("valid_control", cf);
  ctl.data.clear();
  net::encode_control(ctl, cf);
  emit("valid_control_empty", cf);

  // --- generation-field and version-compat seeds --------------------------
  {
    const auto pkt = random_dense<gf::GF256>(5, 4, rng);
    std::vector<std::uint8_t> f;
    net::encode_into(pkt, 5, f, 0xdead00ffu);
    emit("valid_gen_nonzero", f);
    net::encode_into(pkt, 5, f, 0, net::kWireVersionV1);
    emit("valid_v1_gf256", f);
    f.push_back(0x00);
    emit("bad_v1_trailing", f);
    net::encode_into(random_bit(13, 2, rng), 13, f, 0, net::kWireVersionV1);
    emit("valid_v1_gf2bit", f);
    ctl.sender = 3;
    ctl.data = {0xaa, 0xbb};
    net::encode_control(ctl, f, 0, net::kWireVersionV1);
    emit("valid_v1_control", f);
    net::encode_control(ctl, f, 42);
    emit("valid_gen_control", f);
  }

  // --- the malformed corpus the wire tests pin ----------------------------
  const auto base = frame_of(random_dense<gf::GF256>(5, 4, rng), 5);

  for (const std::size_t cut : {0u, 3u, 11u, 12u, 13u, 15u, 19u}) {
    std::snprintf(name, sizeof name, "bad_truncated_%zu", cut);
    emit(name, std::vector<std::uint8_t>(base.begin(),
                                         base.begin() + static_cast<std::ptrdiff_t>(cut)));
  }

  auto f = base;
  f[0] = 0x42;
  emit("bad_magic0", f);
  f = base;
  f[1] = 0x00;
  emit("bad_magic1", f);
  f = base;
  f[2] = static_cast<std::uint8_t>(net::kWireVersion + 1);
  emit("bad_version", f);
  f = base;
  f[2] = 0;
  emit("bad_version_zero", f);
  f = base;
  f[3] = 6;  // first unassigned field id
  emit("bad_field_unassigned", f);
  f = base;
  f[3] = 0xff;
  emit("bad_field_ff", f);

  f = base;
  net::write_header(f.data(), net::WireHeader{net::WireField::Gf256, 0xffffffffu, 4});
  emit("bad_oversized_k", f);
  f = base;
  net::write_header(f.data(), net::WireHeader{net::WireField::Gf256, 5, 0xffffffffu});
  emit("bad_oversized_len", f);

  f = base;
  net::write_header(f.data(), net::WireHeader{net::WireField::Gf256, 6, 4});
  emit("bad_shape_mismatch", f);

  f = base;
  f.push_back(0x00);
  emit("bad_trailing", f);

  // Out-of-range GF(16) symbol and nonzero GF(2) spare bits.
  f = frame_of(random_dense<gf::GF16>(5, 4, rng), 5);
  f[net::kHeaderBytes] = 16;
  emit("bad_gf16_symbol", f);
  f = frame_of(random_dense<gf::GF2>(5, 4, rng), 5);
  f[net::kHeaderBytes] |= 0x80;
  emit("bad_gf2_spare_bits", f);

  // Tiny degenerate inputs the truncation loop does not reach.
  emit("bad_empty", {});
  emit("bad_one_byte", {0x41});

  std::fprintf(stderr, "gen_corpus: wrote %d seed(s) to %s\n", g_count,
               g_out.c_str());
  return 0;
}
