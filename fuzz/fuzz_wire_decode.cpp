// libFuzzer harness for net::decode_into over every wire field.
//
// The input IS the frame (no interpreted prefix, so seed frames from the
// encoder are valid inputs byte for byte).  Each frame is offered to all
// five packet codecs plus the control codec, under three shape
// expectations per codec:
//
//   * the shape the header itself declares (the deep path: body parsing),
//   * a fixed small shape (exercises Mismatch),
//   * a shape straddling the bit-packing boundary (k = 13).
//
// Checked properties, enforced with FUZZ_ASSERT in every build:
//
//   1. decode_into never crashes, whatever the bytes (the contract of
//      src/net/wire.hpp: malformed input is REJECTED, not fatal).
//   2. Canonical encoding: if a frame decodes Ok, re-encoding the decoded
//      packet at the version and generation the header reported reproduces
//      the input bytes exactly (covers both v1 and v2 frames, and every
//      generation id value the fuzzer mutates into the v2 header).
//   3. A decoded packet is well-shaped: coeff/payload sizes match the
//      expectation the decoder was constructed with, and every symbol is
//      inside its field's range (what makes it safe to feed table-driven
//      field arithmetic downstream).
//   4. A frame the header reports as v1 carries generation 0 -- the v1
//      layout has no generation field to smuggle one in.
#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "fuzz_common.hpp"
#include "net/wire.hpp"

namespace {

using namespace ag;
using net::DecodeStatus;

// Replay-friendly limits: big enough for every committed seed, small enough
// that a hostile header cannot make the harness allocate gigabytes while
// the fuzzer explores the Oversized boundary.
constexpr net::WireLimits kLimits{1u << 12, 1u << 12};

template <typename P>
void check_canonical_reencode(const P& pkt, std::size_t k, const net::WireHeader& hdr,
                              std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> again;
  const std::size_t m = net::encode_into(pkt, k, again, hdr.generation, hdr.version);
  FUZZ_ASSERT(m == frame.size(), "re-encoded size differs");
  FUZZ_ASSERT(std::equal(again.begin(), again.end(), frame.begin()),
              "re-encoded bytes differ (non-canonical decode accepted)");
}

void check_header_invariants(const net::WireHeader& hdr) {
  FUZZ_ASSERT(hdr.version == net::kWireVersion || hdr.version == net::kWireVersionV1,
              "decoded version outside the accepted set");
  FUZZ_ASSERT(hdr.version != net::kWireVersionV1 || hdr.generation == 0,
              "v1 frame decoded with a nonzero generation");
}

void check_bit_shape(std::span<const std::uint8_t> frame, std::size_t k,
                     std::size_t len) {
  linalg::BitPacket pkt;
  net::WireHeader hdr;
  if (net::decode_into(frame, k, len, pkt, hdr, kLimits) != DecodeStatus::Ok) return;
  check_header_invariants(hdr);
  FUZZ_ASSERT(pkt.coeffs.size() == (k + 63) / 64, "coeff words != ceil(k/64)");
  FUZZ_ASSERT(pkt.payload.size() == len, "payload length != expectation");
  if (k % 64 != 0 && !pkt.coeffs.empty()) {
    FUZZ_ASSERT(pkt.coeffs.back() >> (k % 64) == 0,
                "nonzero spare coefficient bits accepted");
  }
  check_canonical_reencode(pkt, k, hdr, frame);
}

template <typename F>
void check_dense_shape(std::span<const std::uint8_t> frame, std::size_t k,
                       std::size_t len) {
  linalg::DensePacket<F> pkt;
  net::WireHeader hdr;
  if (net::decode_into(frame, k, len, pkt, hdr, kLimits) != DecodeStatus::Ok) return;
  check_header_invariants(hdr);
  FUZZ_ASSERT(pkt.coeffs.size() == k, "coeff count != expectation");
  FUZZ_ASSERT(pkt.payload.size() == len, "payload length != expectation");
  for (const auto c : pkt.coeffs)
    FUZZ_ASSERT(static_cast<std::uint32_t>(c) < F::order, "coefficient out of field");
  for (const auto s : pkt.payload)
    FUZZ_ASSERT(static_cast<std::uint32_t>(s) < F::order, "payload symbol out of field");
  check_canonical_reencode(pkt, k, hdr, frame);
}

template <typename ShapeCheck>
void check_field(std::span<const std::uint8_t> frame, ShapeCheck&& check) {
  // Shape from the header itself (capped by the harness limits): the deep
  // path where the declared sizes agree and the body parser runs.
  net::WireHeader h;
  if (net::read_header(frame, h, kLimits) == DecodeStatus::Ok) {
    check(frame, h.k, h.payload_len);
  }
  check(frame, 5, 4);   // fixed small shape: exercises Mismatch
  check(frame, 13, 0);  // sub-byte coefficient tail, empty payload
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> frame(data, size);

  check_field(frame, [](auto f, std::size_t k, std::size_t n) { check_bit_shape(f, k, n); });
  check_field(frame, [](auto f, std::size_t k, std::size_t n) { check_dense_shape<gf::GF2>(f, k, n); });
  check_field(frame, [](auto f, std::size_t k, std::size_t n) { check_dense_shape<gf::GF16>(f, k, n); });
  check_field(frame, [](auto f, std::size_t k, std::size_t n) { check_dense_shape<gf::GF256>(f, k, n); });
  check_field(frame, [](auto f, std::size_t k, std::size_t n) { check_dense_shape<gf::GF65536>(f, k, n); });

  ag::net::ControlFrame ctl;
  net::WireHeader chdr;
  if (ag::net::decode_control(frame, ctl, chdr, kLimits) == DecodeStatus::Ok) {
    check_header_invariants(chdr);
    std::vector<std::uint8_t> again;
    const std::size_t m = net::encode_control(ctl, again, chdr.generation, chdr.version);
    FUZZ_ASSERT(m == frame.size(), "control re-encoded size differs");
    FUZZ_ASSERT(std::equal(again.begin(), again.end(), frame.begin()),
                "control re-encoded bytes differ");
  }
  return 0;
}
