// Standalone replay driver: runs a fuzz harness's LLVMFuzzerTestOneInput
// over corpus files WITHOUT libFuzzer, so corpus regressions gate every
// build (including GCC builds, where -fsanitize=fuzzer does not exist).
//
// Usage:
//   <replayer> [--mutate N] <file-or-directory>...
//
// Every regular file under the given paths is replayed once.  With
// --mutate N, each corpus file additionally seeds N deterministic xorshift
// mutations (byte flips, truncations, extensions) that are fed through the
// harness -- a dumb but portable smoke fuzz for toolchains without
// libFuzzer.  Exit 0 iff every input was processed without the harness
// aborting; any FUZZ_ASSERT/sanitizer failure terminates the process with
// the offending path already printed.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

// Deterministic xorshift64* stream: replays are reproducible everywhere by
// design, independent of libc rand or hardware entropy.
struct XorShift {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
  }
};

void mutate_and_run(const std::vector<std::uint8_t>& seed, std::uint64_t salt,
                    std::size_t iterations) {
  XorShift rng{salt ^ 0x9E3779B97F4A7C15ULL};
  std::vector<std::uint8_t> buf;
  for (std::size_t i = 0; i < iterations; ++i) {
    buf = seed;
    const std::uint64_t op = rng.next() % 4;
    if (op == 0 && !buf.empty()) {  // flip bytes
      const std::size_t flips = 1 + rng.next() % 4;
      for (std::size_t f = 0; f < flips; ++f)
        buf[rng.next() % buf.size()] ^= static_cast<std::uint8_t>(rng.next());
    } else if (op == 1 && !buf.empty()) {  // truncate
      buf.resize(rng.next() % buf.size());
    } else if (op == 2) {  // extend with noise
      const std::size_t extra = 1 + rng.next() % 16;
      for (std::size_t e = 0; e < extra; ++e)
        buf.push_back(static_cast<std::uint8_t>(rng.next()));
    } else if (!buf.empty()) {  // splice: rotate a window
      const std::size_t at = rng.next() % buf.size();
      std::rotate(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(at), buf.end());
    }
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t mutations = 0;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mutate") == 0 && i + 1 < argc) {
      mutations = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else {
      roots.emplace_back(argv[i]);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: %s [--mutate N] <file-or-dir>...\n", argv[0]);
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& e : fs::recursive_directory_iterator(root))
        if (e.is_regular_file()) files.push_back(e.path());
    } else if (fs::is_regular_file(root)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "corpus_replay: no such input: %s\n", root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "corpus_replay: no corpus files found\n");
    return 2;
  }

  std::uint64_t salt = 0;
  for (const auto& f : files) {
    // Print BEFORE running so a crash names its input.
    std::fprintf(stderr, "replay %s\n", f.c_str());
    const auto bytes = read_file(f);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    if (mutations > 0) mutate_and_run(bytes, ++salt, mutations);
  }
  std::fprintf(stderr, "corpus_replay: %zu file(s) ok (%zu mutation(s) each)\n",
               files.size(), mutations);
  return 0;
}
