// libFuzzer harness for DenseDecoder<GF256>::insert and BitDecoder::insert.
//
// The input is a little op script: a 2-byte prefix fixes the decoder shape
// (k in [1, 64], payload_len in [0, 16]), then the remaining bytes are
// consumed as packets and fed to insert().  Two decoders run in lockstep
// over the same script:
//
//   * DenseDecoder<gf::GF256>  -- every raw byte is a valid symbol,
//   * BitDecoder               -- bytes become coefficient words (spare
//                                 bits masked, as the wire codec guarantees).
//
// Every 4th packet is instead round-tripped through the wire codec first
// (encode -> decode -> insert), so the "datagram to decoder" path the UDP
// transport uses is covered end to end with attacker-shaped VALUES (shapes
// are fixed by construction: wire decode already rejects shape mismatches,
// which fuzz_wire_decode covers).
//
// Checked properties (FUZZ_ASSERT aborts in every build):
//   1. insert never crashes and never returns true without raising rank.
//   2. rank is monotone, bounded by k, and zero packets are never helpful.
//   3. contains(coeffs) is true for every packet the decoder accepted.
//   4. At full rank, every decoded message span has payload_len symbols in
//      field range.
#include <cstdint>
#include <span>
#include <vector>

#include "fuzz_common.hpp"
#include "linalg/bit_decoder.hpp"
#include "linalg/dense_decoder.hpp"
#include "net/wire.hpp"

namespace {

using namespace ag;

using DensePkt = linalg::DensePacket<gf::GF256>;
using BitPkt = linalg::BitPacket;

void check_dense_full_rank(const linalg::DenseDecoder<gf::GF256>& dec) {
  if (!dec.full_rank()) return;
  for (std::size_t i = 0; i < dec.message_count(); ++i) {
    const auto msg = dec.decoded_message(i);
    FUZZ_ASSERT(msg.size() == dec.payload_length(), "decoded payload length");
  }
}

void check_bit_full_rank(const linalg::BitDecoder& dec) {
  if (!dec.full_rank()) return;
  for (std::size_t i = 0; i < dec.message_count(); ++i) {
    const auto msg = dec.decoded_message(i);
    FUZZ_ASSERT(msg.size() == dec.payload_length(), "decoded payload length");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  fuzz::ByteReader in(data, size);
  const std::size_t k = 1 + in.u8() % 64;
  const std::size_t payload_len = in.u8() % 17;

  linalg::DenseDecoder<gf::GF256> dense(k, payload_len);
  linalg::BitDecoder bits(k, payload_len);
  const std::size_t words = linalg::BitDecoder::words_for(k);

  DensePkt dp;
  BitPkt bp;
  std::vector<std::uint8_t> frame;
  DensePkt decoded;

  std::size_t packet_no = 0;
  while (in.remaining() > 0 && packet_no < 512) {
    ++packet_no;

    // Build a well-shaped GF(256) packet from the next bytes (zero-padded
    // once the script runs dry so the tail still lands a few packets).
    dp.coeffs.assign(k, 0);
    dp.payload.assign(payload_len, 0);
    for (auto& c : dp.coeffs) c = in.u8();
    for (auto& s : dp.payload) s = in.u8();

    // The same bytes as word-packed GF(2) coefficients, spare bits masked.
    bp.coeffs.assign(words, 0);
    bp.payload.assign(payload_len, 0);
    for (std::size_t i = 0; i < k; ++i) {
      if (dp.coeffs[i] & 1u) bp.coeffs[i / 64] |= std::uint64_t{1} << (i % 64);
    }
    for (std::size_t i = 0; i < payload_len; ++i) bp.payload[i] = dp.payload[i];

    if (packet_no % 4 == 0) {
      // Wire round trip before insert: the transport's receive path.
      net::encode_into(dp, k, frame);
      const auto st = net::decode_into(std::span<const std::uint8_t>(frame), k,
                                       payload_len, decoded);
      FUZZ_ASSERT(st == net::DecodeStatus::Ok, "canonical frame must decode");
      FUZZ_ASSERT(decoded.coeffs == dp.coeffs && decoded.payload == dp.payload,
                  "wire round trip changed the packet");
    }

    const std::size_t dense_rank_before = dense.rank();
    const bool dense_helpful = dense.insert(dp);
    FUZZ_ASSERT(dense.rank() == dense_rank_before + (dense_helpful ? 1 : 0),
                "insert verdict disagrees with rank delta");
    FUZZ_ASSERT(dense.rank() <= k, "rank exceeded k");
    if (dp.is_zero()) FUZZ_ASSERT(!dense_helpful, "zero packet counted as helpful");
    if (dense_helpful) {
      FUZZ_ASSERT(dense.contains(std::span<const std::uint8_t>(dp.coeffs)),
                  "accepted packet not in row space");
    }

    const std::size_t bit_rank_before = bits.rank();
    const bool bit_helpful = bits.insert(bp);
    FUZZ_ASSERT(bits.rank() == bit_rank_before + (bit_helpful ? 1 : 0),
                "bit insert verdict disagrees with rank delta");
    FUZZ_ASSERT(bits.rank() <= k, "bit rank exceeded k");
    if (bp.is_zero()) FUZZ_ASSERT(!bit_helpful, "zero bit packet counted as helpful");
    if (bit_helpful) {
      FUZZ_ASSERT(bits.contains(std::span<const std::uint64_t>(bp.coeffs)),
                  "accepted bit packet not in row space");
    }
  }

  check_dense_full_rank(dense);
  check_bit_full_rank(bits);
  return 0;
}
