// Shared scaffolding for the fuzz harnesses.
//
// Each harness defines LLVMFuzzerTestOneInput and is linked two ways:
//   * under AG_FUZZ=ON (clang only) against libFuzzer (-fsanitize=fuzzer),
//   * in every build against standalone_driver.cpp, which replays corpus
//     files through the same entry point (the corpus_replay ctests).
//
// Invariant violations must abort in BOTH configurations, including Release
// replay builds where NDEBUG strips assert(), so the harnesses use
// FUZZ_ASSERT instead of assert.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#define FUZZ_ASSERT(cond, what)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s (%s:%d)\n", what,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace fuzz {

// Tiny deterministic byte reader: harnesses derive shapes and choices from
// the input prefix so libFuzzer can explore them.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : p_(data), n_(size) {}

  std::uint8_t u8(std::uint8_t fallback = 0) {
    if (i_ >= n_) return fallback;
    return p_[i_++];
  }

  std::uint32_t u16(std::uint32_t fallback = 0) {
    if (i_ + 2 > n_) return fallback;
    const std::uint32_t v =
        static_cast<std::uint32_t>(p_[i_]) | (static_cast<std::uint32_t>(p_[i_ + 1]) << 8);
    i_ += 2;
    return v;
  }

  const std::uint8_t* rest() const { return p_ + i_; }
  std::size_t remaining() const { return n_ - i_; }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t i_ = 0;
};

}  // namespace fuzz
